// Package repro is a Go reproduction of "Progressive Shape Analysis for
// Real C Codes" (F. Corbera, R. Asenjo, E.L. Zapata — ICPP 2001): a
// shape-analysis compiler that assigns to every statement of a C
// program a Reduced Set of Reference Shape Graphs (RSRSG)
// over-approximating the heap after the statement, and that analyzes
// progressively — escalating from the cheap L1 configuration to the
// precise L3 one only when the client's accuracy goals demand it.
//
// Quick start:
//
//	res, err := repro.Analyze(src, repro.Options{Level: repro.L1})
//	report := repro.Report(res)          // per-struct share summary
//
//	prog := repro.MustKernel("barneshut") // a paper benchmark kernel
//	pres := repro.AnalyzeProgressive(prog, prog.Goals, repro.Options{})
//
// The heavy lifting lives in the internal packages: internal/cminic
// (the C-subset frontend), internal/ir (normalization to the paper's
// six simple pointer statements and the CFG), internal/rsg (reference
// shape graphs and the DIVIDE/PRUNE/COMPRESS/JOIN operations),
// internal/rsrsg (the reduced sets), internal/absem (abstract
// semantics), internal/analysis (fixed-point engine and progressive
// driver) and internal/checker (client queries).
package repro

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/benchprog"
	"repro/internal/checker"
	"repro/internal/cminic"
	"repro/internal/ir"
	"repro/internal/rsg"
)

// Level re-exports the progressive analysis levels.
type Level = rsg.Level

// The three analysis levels of the paper (Sect. 5).
const (
	L1 = rsg.L1
	L2 = rsg.L2
	L3 = rsg.L3
)

// Options re-exports the analysis options.
type Options = analysis.Options

// Result re-exports the per-run analysis result.
type Result = analysis.Result

// Goal re-exports the accuracy-goal interface consumed by the
// progressive driver.
type Goal = analysis.Goal

// ProgressiveResult re-exports the progressive driver's outcome.
type ProgressiveResult = analysis.ProgressiveResult

// Kernel re-exports the benchmark kernel bundle.
type Kernel = benchprog.Kernel

// TypeSummary re-exports the checker's per-struct summary.
type TypeSummary = checker.TypeSummary

// Program re-exports the lowered IR program.
type Program = ir.Program

// Compile parses mini-C source and lowers its main function to the
// six-statement IR.
func Compile(src string) (*Program, error) {
	file, err := cminic.Parse(src)
	if err != nil {
		return nil, err
	}
	return ir.LowerMain(file)
}

// Analyze compiles and analyzes mini-C source at the level selected in
// opts (L1 by default).
func Analyze(src string, opts Options) (*Result, error) {
	prog, err := Compile(src)
	if err != nil {
		return nil, err
	}
	return analysis.Run(prog, opts)
}

// AnalyzeProgram runs the analysis over an already-lowered program.
func AnalyzeProgram(prog *Program, opts Options) (*Result, error) {
	return analysis.Run(prog, opts)
}

// AnalyzeProgressive runs the progressive L1 -> L2 -> L3 analysis,
// stopping at the first level whose result meets every goal.
func AnalyzeProgressive(prog *Program, goals []Goal, opts Options) *ProgressiveResult {
	return analysis.Progressive(prog, goals, opts)
}

// Report summarizes the exit RSRSG of a result per struct type.
func Report(res *Result) []TypeSummary { return checker.Report(res) }

// FormatReport renders the summaries as an aligned table.
func FormatReport(s []TypeSummary) string { return checker.FormatReport(s) }

// LoopReport re-exports the per-loop dependence summary.
type LoopReport = checker.LoopReport

// AnalyzeLoops produces the per-loop dependence report — the judgement
// the paper's envisioned parallelizing pass would consume: which loops
// traverse recursive structures, whether they store pointers, and
// whether their iterations provably access independent regions.
func AnalyzeLoops(res *Result) []LoopReport { return checker.AnalyzeLoops(res) }

// FormatLoopReports renders the loop reports as an aligned table.
func FormatLoopReports(r []LoopReport) string { return checker.FormatLoopReports(r) }

// Kernels returns the paper's four benchmark kernels (Table 1 order).
func Kernels() []*Kernel { return benchprog.Kernels() }

// KernelByName returns a kernel (benchmark or teaching) by name, or nil.
// Valid names: matvec, matmat, lu, barneshut, slist, dlist, btree.
func KernelByName(name string) *Kernel { return benchprog.ByName(name) }

// MustKernel returns the named kernel's lowered program and the kernel,
// panicking on unknown names or lowering errors — for examples and
// benchmarks where the kernels are known-good.
func MustKernel(name string) (*Program, *Kernel) {
	k := benchprog.ByName(name)
	if k == nil {
		panic(fmt.Sprintf("repro: unknown kernel %q (have %v)", name, benchprog.Names()))
	}
	prog, err := k.Compile()
	if err != nil {
		panic(fmt.Sprintf("repro: kernel %s does not compile: %v", name, err))
	}
	return prog, k
}
