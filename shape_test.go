package repro_test

import (
	"strings"
	"testing"

	"repro"
)

const apiListSrc = `
struct node { int v; struct node *nxt; };
void main(void) {
    struct node *h;
    struct node *p;
    h = malloc(sizeof(struct node));
    h->nxt = NULL;
    p = h;
    while (c) {
        p->nxt = malloc(sizeof(struct node));
        p = p->nxt;
        p->nxt = NULL;
    }
}`

func TestAnalyzeAPI(t *testing.T) {
	res, err := repro.Analyze(apiListSrc, repro.Options{Level: repro.L1})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitSet().Len() == 0 {
		t.Fatal("empty exit state")
	}
	report := repro.Report(res)
	if len(report) != 1 || report[0].Struct != "node" {
		t.Fatalf("report = %+v", report)
	}
	if report[0].Shared != 0 {
		t.Error("list nodes must be unshared")
	}
	if txt := repro.FormatReport(report); !strings.Contains(txt, "node") {
		t.Errorf("formatted report:\n%s", txt)
	}
}

func TestAnalyzeParseError(t *testing.T) {
	_, err := repro.Analyze("void main(void) { struct missing *p; }", repro.Options{})
	if err == nil {
		t.Fatal("expected error for undeclared struct")
	}
}

func TestCompileAndAnalyzeProgram(t *testing.T) {
	prog, err := repro.Compile(apiListSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Stmts) == 0 || len(prog.Loops) != 1 {
		t.Fatalf("unexpected program shape: %d stmts %d loops", len(prog.Stmts), len(prog.Loops))
	}
	for _, lvl := range []repro.Level{repro.L1, repro.L2, repro.L3} {
		res, err := repro.AnalyzeProgram(prog, repro.Options{Level: lvl})
		if err != nil {
			t.Fatalf("%s: %v", lvl, err)
		}
		if res.Level != lvl {
			t.Errorf("result level = %s, want %s", res.Level, lvl)
		}
	}
}

func TestKernelRegistry(t *testing.T) {
	names := []string{"matvec", "matmat", "lu", "barneshut", "slist", "dlist", "btree"}
	for _, n := range names {
		k := repro.KernelByName(n)
		if k == nil {
			t.Errorf("kernel %s missing", n)
			continue
		}
		if k.Name != n || k.Title == "" || len(k.Goals) == 0 {
			t.Errorf("kernel %s incomplete: %+v", n, k)
		}
	}
	if repro.KernelByName("nope") != nil {
		t.Error("unknown kernel must return nil")
	}
	if got := len(repro.Kernels()); got != 4 {
		t.Errorf("Kernels() = %d entries, want the 4 Table 1 codes", got)
	}
}

func TestMustKernelPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustKernel must panic on unknown names")
		}
	}()
	repro.MustKernel("does-not-exist")
}

func TestAnalyzeLoopsAPI(t *testing.T) {
	res, err := repro.Analyze(apiListSrc, repro.Options{Level: repro.L1})
	if err != nil {
		t.Fatal(err)
	}
	reports := repro.AnalyzeLoops(res)
	if len(reports) != 1 {
		t.Fatalf("got %d loop reports", len(reports))
	}
	if reports[0].Parallelizable {
		t.Error("the build loop stores pointers; not parallelizable")
	}
	if txt := repro.FormatLoopReports(reports); !strings.Contains(txt, "loop") {
		t.Errorf("rendering:\n%s", txt)
	}
}

func TestProgressiveOnTeachingKernel(t *testing.T) {
	prog, k := repro.MustKernel("slist")
	pres := repro.AnalyzeProgressive(prog, k.Goals, repro.Options{})
	if pres.AchievedLevel() != repro.L1 {
		t.Errorf("slist should be accurate at L1, achieved %s\n%s",
			pres.AchievedLevel(), pres.Summary())
	}
	if len(pres.Levels) != 1 {
		t.Errorf("progressive driver ran %d levels, want 1", len(pres.Levels))
	}
	if !strings.Contains(pres.Summary(), "L1") {
		t.Error("summary must mention the level")
	}
}
